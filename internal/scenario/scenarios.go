// scenarios.go registers the built-in catalog: the paper's evaluation
// sweeps (Section 6) as named scenarios, plus workload shapes beyond the
// paper — hot-key skew, bursty arrivals, a skewed-home table, a
// think-heavy application profile, reader/writer mixes (rw/...),
// lease-style long holds (lease/...) and failure/recovery jitter sweeps
// (fail/...).
package scenario

import (
	"time"

	"alock/internal/harness"
	"alock/internal/locktable"
	"alock/internal/model"
)

// fig5Grid expands one Figure 5 contention/locality shape over the scale's
// node counts via the same panel enumeration the figure driver uses.
func fig5Grid(locks, localityPct int) func(harness.Scale) []harness.Config {
	return func(s harness.Scale) []harness.Config {
		var cfgs []harness.Config
		for _, nodes := range s.NodeCounts() {
			cfgs = append(cfgs, harness.Fig5PanelConfigs(s, nodes, locks, localityPct)...)
		}
		return cfgs
	}
}

// rwAlgorithms are what the reader/writer scenarios compare: the three
// native RW locks plus ALock as the exclusive-degradation baseline (its
// RLock behaves as Lock, so the gap it shows IS the value of shared mode).
var rwAlgorithms = []string{"rw-queue", "rw-budget", "rw-wpref", "alock"}

// sweepGrid enumerates algorithms x the scale's thread counts on the big
// cluster at medium contention / 90% locality, applying mut to each config
// — the common chassis the extension scenarios specialize.
func sweepGrid(s harness.Scale, algos []string, mut func(*harness.Config)) []harness.Config {
	warm, meas := s.Windows()
	var cfgs []harness.Config
	for _, algo := range algos {
		for _, th := range s.ThreadCounts() {
			c := harness.Config{
				Algorithm:      algo,
				Nodes:          s.BigClusterNodes(),
				ThreadsPerNode: th,
				Locks:          locktable.MediumContentionLocks,
				LocalityPct:    90,
				WarmupNS:       warm,
				MeasureNS:      meas,
				TargetOps:      s.TargetOpsCount(),
				Seed:           s.DefaultSeed(),
			}
			mut(&c)
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

func init() {
	Register(Scenario{
		Name:        "paper/fig1-loopback",
		Description: "Section 2 loopback congestion: RDMA spinlock on one node across thread counts",
		Expand:      harness.Figure1Configs,
	})
	Register(Scenario{
		Name:        "paper/fig5-high-contention",
		Description: "Figure 5 high-contention panels: 20 locks, 90% locality, all algorithms",
		Expand:      fig5Grid(locktable.HighContentionLocks, 90),
	})
	Register(Scenario{
		Name:        "paper/fig5-medium-contention",
		Description: "Figure 5 medium-contention panels: 100 locks, 90% locality, all algorithms",
		Expand:      fig5Grid(locktable.MediumContentionLocks, 90),
	})
	Register(Scenario{
		Name:        "paper/fig5-low-contention",
		Description: "Figure 5 low-contention panels: 1000 locks, 90% locality, all algorithms",
		Expand:      fig5Grid(locktable.LowContentionLocks, 90),
	})
	Register(Scenario{
		Name:        "paper/fig5-full-locality",
		Description: "Figure 5 isolated panels: 20 locks, 100% locality, all algorithms",
		Expand:      fig5Grid(locktable.HighContentionLocks, 100),
	})
	Register(Scenario{
		Name:        "paper/fig6-latency",
		Description: "Figure 6 latency-CDF grid: locality x contention at 8 threads/node",
		Expand:      harness.Figure6Configs,
	})

	// --- Extensions beyond the paper ---

	Register(Scenario{
		Name:        "hotkey-zipf",
		Description: "Zipf(1.5) hot-key popularity at medium contention: a few locks absorb most traffic",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.MediumContentionLocks,
						LocalityPct:    90,
						ZipfS:          1.5,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
	Register(Scenario{
		Name:        "bursty-arrivals",
		Description: "on/off arrival phases (60% duty cycle): threads burst, idle, and re-collide",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.HighContentionLocks,
						LocalityPct:    90,
						BurstOn:        150 * time.Microsecond,
						BurstOff:       100 * time.Microsecond,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
	Register(Scenario{
		Name:        "skewed-home",
		Description: "60% of the lock table homed on node 0: one shard dominates, its NIC funnels the cluster",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.MediumContentionLocks,
						LocalityPct:    90,
						HomeSkewPct:    60,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
	// --- Reader/writer mixes (tentpole extension: shared-mode axis) ---

	Register(Scenario{
		Name:        "rw/read-heavy",
		Description: "95/5 read/write mix: native RW locks vs ALock's exclusive degradation",
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, rwAlgorithms, func(c *harness.Config) {
				c.ReadPct = 95
			})
		},
	})
	Register(Scenario{
		Name:        "rw/mixed",
		Description: "70/30 read/write mix at high contention: write serialization bites",
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, rwAlgorithms, func(c *harness.Config) {
				c.ReadPct = 70
				c.Locks = locktable.HighContentionLocks
			})
		},
	})

	Register(Scenario{
		Name:        "rw/queue-scaling",
		Description: "90/10 read mix across thread counts: queued descriptors vs the single-word RW locks",
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, rwAlgorithms, func(c *harness.Config) {
				c.ReadPct = 90
			})
		},
	})
	Register(Scenario{
		Name:        "rw/storm-tails",
		Description: "70/30 mix on 20 hot locks: the rCAS storm at the home NICs, read vs write tails",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{4, 8, 12} // the tails, not a full thread sweep
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, []string{"rw-queue", "rw-budget", "rw-wpref"},
				func(c *harness.Config) {
					c.ReadPct = 70
					c.Locks = locktable.HighContentionLocks
				})
		},
	})

	// --- Lease-style long holds ---

	Register(Scenario{
		Name:        "lease/holders",
		Description: "2% of ops hold the lock 25us (ownership leases): queues ride out long holds",
		// Long holds need a longer window to produce stable tails, and the
		// interesting regime is a few contended threads — the per-scenario
		// override decouples both from the global presets.
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{2, 4, 8}
			s.WarmupOverride = 800_000
			s.MeasureOverride = 8_000_000
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, harness.EvalAlgorithms, func(c *harness.Config) {
				c.Locks = locktable.HighContentionLocks
				c.LeaseProb = 0.02
				c.LeaseHold = 25 * time.Microsecond
			})
		},
	})
	Register(Scenario{
		Name:        "lease/rw-leases",
		Description: "90/10 read mix where 1% of ops are 50us write-side leases: readers drain around them",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{4, 8}
			s.MeasureOverride = 8_000_000
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, []string{"rw-budget", "rw-wpref"}, func(c *harness.Config) {
				c.ReadPct = 90
				c.LeaseProb = 0.01
				c.LeaseHold = 50 * time.Microsecond
			})
		},
	})

	// --- Failure/recovery on the jitter injection hooks ---

	Register(Scenario{
		Name:        "fail/jitter-storm",
		Description: "fabric failure storm: per-verb 20us delay spikes at 0.1%/1%/5% probability",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{8} // the sweep axis is storm intensity, not threads
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			var cfgs []harness.Config
			for _, prob := range []float64{0.001, 0.01, 0.05} {
				cfgs = append(cfgs, sweepGrid(s, harness.EvalAlgorithms, func(c *harness.Config) {
					m := model.CX3()
					m.JitterProb = prob
					m.JitterNS = 20_000
					c.Model = m
				})...)
			}
			return cfgs
		},
	})
	Register(Scenario{
		Name:        "fail/jitter-recovery",
		Description: "recovery cost vs spike size: 1% of verbs delayed 5/20/80us, tails show the drain",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{8}
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			var cfgs []harness.Config
			for _, spike := range []int64{5_000, 20_000, 80_000} {
				cfgs = append(cfgs, sweepGrid(s, harness.EvalAlgorithms, func(c *harness.Config) {
					m := model.CX3()
					m.JitterProb = 0.01
					m.JitterNS = spike
					c.Model = m
				})...)
			}
			return cfgs
		},
	})

	// --- Failure injection on the acquisition-token API ---

	Register(Scenario{
		Name:        "fail/abandoned-holder",
		Description: "0.5% of holds crash and wedge the lock 150us: timeouts keep the rest alive, recovery fences the late release",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{4, 8}
			s.MeasureOverride = 8_000_000
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, []string{"alock", "mcs", "spinlock", "rw-queue"},
				func(c *harness.Config) {
					c.Locks = locktable.HighContentionLocks
					c.AcquireTimeout = 30 * time.Microsecond
					c.AbandonProb = 0.005
					c.AbandonHold = 150 * time.Microsecond
				})
		},
	})
	Register(Scenario{
		Name:        "fail/timeout-recovery",
		Description: "acquire deadline sweep 10/30/90us on hot locks: how tight a deadline each queue discipline tolerates",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{8}
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			var cfgs []harness.Config
			for _, timeout := range []time.Duration{10, 30, 90} {
				cfgs = append(cfgs, sweepGrid(s, []string{"alock", "mcs", "spinlock", "rw-queue"},
					func(c *harness.Config) {
						c.Locks = locktable.HighContentionLocks
						c.AcquireTimeout = timeout * time.Microsecond
					})...)
			}
			return cfgs
		},
	})

	// --- Multi-lock transactions (descriptor-per-acquisition) ---

	Register(Scenario{
		Name:        "multi/two-lock",
		Description: "10% of ops are ordered two-lock transactions: overlapping holds via per-acquisition descriptors",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{2, 4, 8}
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, harness.EvalAlgorithms, func(c *harness.Config) {
				c.PairProb = 0.10
			})
		},
	})

	// --- Deadlock policies over k-lock transactions ---
	//
	// The transaction scenarios sweep the algorithms with a fully
	// abortable timed path: the unordered policies recover through real
	// timeouts, so every participant of a conflict cycle must be able to
	// abandon its acquire. filter/bakery (blocking fallback) and the
	// alock variants (committed cohort leaders) are rejected by the
	// harness for these policies; they still run the ordered policy.

	txnAlgorithms := []string{"mcs", "rw-budget", "rw-queue", "rw-wpref", "spinlock"}
	txnBase := func(c *harness.Config) {
		c.TxnLocks = 2
		c.AcquireTimeout = 20 * time.Microsecond
	}
	Register(Scenario{
		Name:        "deadlock/two-cycle",
		Description: "2 threads-per-lock AB-BA cycle on a 2-lock table: timeout-backoff breaks the classic deadlock",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{1, 2}
			s.NodesOverride = []int{2}
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, txnAlgorithms, func(c *harness.Config) {
				txnBase(c)
				c.Locks = 2
				c.TxnRing = true
				c.TxnPolicy = "timeout-backoff"
				// The 2-lock cycle is maximally hostile: tight deadlines and
				// a small backoff base keep commits flowing even in short
				// windows (the capped exponent still separates colliders).
				c.AcquireTimeout = 10 * time.Microsecond
				c.TxnBackoff = 4 * time.Microsecond
			})
		},
	})
	Register(Scenario{
		Name:        "deadlock/dining",
		Description: "dining philosophers: each thread's 2-lock txn takes neighboring forks on a 20-fork ring, wait-die resolves the cycle",
		Scale: func(s harness.Scale) harness.Scale {
			// Dining is per-ring-slot contention: philosophers should match
			// forks (20), not the big-cluster presets — oversubscribing the
			// ring 6x starves every policy into zero commits.
			s.NodesOverride = []int{4}
			s.ThreadsOverride = []int{2, 5} // 8 philosophers, then a full ring of 20
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, txnAlgorithms, func(c *harness.Config) {
				txnBase(c)
				c.Locks = locktable.HighContentionLocks
				c.TxnRing = true
				c.TxnPolicy = "wait-die"
			})
		},
	})
	Register(Scenario{
		Name:        "deadlock/hotset-unordered",
		Description: "3-lock transactions over zipf-hot lock sets, acquired unordered: timeout-backoff under hot-set collisions",
		Scale: func(s harness.Scale) harness.Scale {
			s.ThreadsOverride = []int{4, 8}
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			return sweepGrid(s, txnAlgorithms, func(c *harness.Config) {
				txnBase(c)
				c.TxnLocks = 3
				c.ZipfS = 1.5
				c.TxnPolicy = "timeout-backoff"
				c.TxnBackoff = 10 * time.Microsecond
			})
		},
	})
	Register(Scenario{
		Name:        "deadlock/policy-compare",
		Description: "one dining-ring config swept across all three policies: ordered avoidance vs timeout-backoff vs wait-die",
		Scale: func(s harness.Scale) harness.Scale {
			s.NodesOverride = []int{4}
			s.ThreadsOverride = []int{5} // a full 20-philosopher ring
			return s
		},
		Expand: func(s harness.Scale) []harness.Config {
			var cfgs []harness.Config
			for _, policy := range []string{"ordered", "timeout-backoff", "wait-die"} {
				cfgs = append(cfgs, sweepGrid(s, txnAlgorithms, func(c *harness.Config) {
					txnBase(c)
					c.Locks = locktable.HighContentionLocks
					c.TxnRing = true
					c.TxnPolicy = policy
					if policy == "timeout-backoff" {
						c.TxnBackoff = 10 * time.Microsecond
					}
				})...)
			}
			return cfgs
		},
	})

	Register(Scenario{
		Name:        "think-heavy",
		Description: "application profile with 2us critical sections and 5us think time between ops",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.MediumContentionLocks,
						LocalityPct:    90,
						CSWork:         2 * time.Microsecond,
						Think:          5 * time.Microsecond,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
}
