// scenarios.go registers the built-in catalog: the paper's evaluation
// sweeps (Section 6) as named scenarios, plus workload shapes beyond the
// paper — hot-key skew, bursty arrivals, a skewed-home table, and a
// think-heavy application profile.
package scenario

import (
	"time"

	"alock/internal/harness"
	"alock/internal/locktable"
)

// fig5Grid expands one Figure 5 contention/locality shape over the scale's
// node counts via the same panel enumeration the figure driver uses.
func fig5Grid(locks, localityPct int) func(harness.Scale) []harness.Config {
	return func(s harness.Scale) []harness.Config {
		var cfgs []harness.Config
		for _, nodes := range s.NodeCounts() {
			cfgs = append(cfgs, harness.Fig5PanelConfigs(s, nodes, locks, localityPct)...)
		}
		return cfgs
	}
}

func init() {
	Register(Scenario{
		Name:        "paper/fig1-loopback",
		Description: "Section 2 loopback congestion: RDMA spinlock on one node across thread counts",
		Expand:      harness.Figure1Configs,
	})
	Register(Scenario{
		Name:        "paper/fig5-high-contention",
		Description: "Figure 5 high-contention panels: 20 locks, 90% locality, all algorithms",
		Expand:      fig5Grid(locktable.HighContentionLocks, 90),
	})
	Register(Scenario{
		Name:        "paper/fig5-medium-contention",
		Description: "Figure 5 medium-contention panels: 100 locks, 90% locality, all algorithms",
		Expand:      fig5Grid(locktable.MediumContentionLocks, 90),
	})
	Register(Scenario{
		Name:        "paper/fig5-low-contention",
		Description: "Figure 5 low-contention panels: 1000 locks, 90% locality, all algorithms",
		Expand:      fig5Grid(locktable.LowContentionLocks, 90),
	})
	Register(Scenario{
		Name:        "paper/fig5-full-locality",
		Description: "Figure 5 isolated panels: 20 locks, 100% locality, all algorithms",
		Expand:      fig5Grid(locktable.HighContentionLocks, 100),
	})
	Register(Scenario{
		Name:        "paper/fig6-latency",
		Description: "Figure 6 latency-CDF grid: locality x contention at 8 threads/node",
		Expand:      harness.Figure6Configs,
	})

	// --- Extensions beyond the paper ---

	Register(Scenario{
		Name:        "hotkey-zipf",
		Description: "Zipf(1.5) hot-key popularity at medium contention: a few locks absorb most traffic",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.MediumContentionLocks,
						LocalityPct:    90,
						ZipfS:          1.5,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
	Register(Scenario{
		Name:        "bursty-arrivals",
		Description: "on/off arrival phases (60% duty cycle): threads burst, idle, and re-collide",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.HighContentionLocks,
						LocalityPct:    90,
						BurstOn:        150 * time.Microsecond,
						BurstOff:       100 * time.Microsecond,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
	Register(Scenario{
		Name:        "skewed-home",
		Description: "60% of the lock table homed on node 0: one shard dominates, its NIC funnels the cluster",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.MediumContentionLocks,
						LocalityPct:    90,
						HomeSkewPct:    60,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
	Register(Scenario{
		Name:        "think-heavy",
		Description: "application profile with 2us critical sections and 5us think time between ops",
		Expand: func(s harness.Scale) []harness.Config {
			warm, meas := s.Windows()
			var cfgs []harness.Config
			for _, algo := range harness.EvalAlgorithms {
				for _, th := range s.ThreadCounts() {
					cfgs = append(cfgs, harness.Config{
						Algorithm:      algo,
						Nodes:          s.BigClusterNodes(),
						ThreadsPerNode: th,
						Locks:          locktable.MediumContentionLocks,
						LocalityPct:    90,
						CSWork:         2 * time.Microsecond,
						Think:          5 * time.Microsecond,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.TargetOpsCount(),
						Seed:           s.DefaultSeed(),
					})
				}
			}
			return cfgs
		},
	})
}
