// svc.go registers the lock-service scenario family (internal/cluster):
// open-loop runs where per-shard Poisson generators offer a configured
// load to bounded worker pools instead of closed-loop threads looping as
// fast as the locks allow. The sweep axis is offered load, expressed as a
// multiple of nominal service capacity so the same scenario is meaningful
// at smoke scale (3 nodes x 2 workers) and paper scale.
package scenario

import (
	"time"

	"alock/internal/harness"
	"alock/internal/locktable"
)

// svcWorkerOPS is the nominal per-worker service capacity the load
// factors are anchored to: a remote lock/unlock pair costs ~2.5-4us under
// the CX3 model, so one worker drains roughly 250k ops/s uncontended.
const svcWorkerOPS = 250_000

// svcWorkers sizes each shard's worker pool: the scale's largest
// per-node thread count (TestTiny: 2, full: 12).
func svcWorkers(s harness.Scale) int {
	th := s.ThreadCounts()
	return th[len(th)-1]
}

// svcGrid enumerates algorithms x offered-load factors on the big
// cluster: one service shard per node (the default), each with a
// svcWorkers-sized pool, at medium contention. The load factor multiplies
// the deployment's nominal capacity (workers x svcWorkerOPS).
func svcGrid(s harness.Scale, algos []string, loads []float64, mut func(*harness.Config)) []harness.Config {
	warm, meas := s.Windows()
	nodes := s.BigClusterNodes()
	workers := svcWorkers(s)
	capacity := float64(nodes*workers) * svcWorkerOPS
	var cfgs []harness.Config
	for _, algo := range algos {
		for _, load := range loads {
			c := harness.Config{
				Algorithm:      algo,
				Nodes:          nodes,
				ThreadsPerNode: workers,
				Locks:          locktable.MediumContentionLocks,
				ArrivalRate:    load * capacity,
				WarmupNS:       warm,
				MeasureNS:      meas,
				Seed:           s.DefaultSeed(),
			}
			mut(&c)
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

func init() {
	Register(Scenario{
		Name:        "svc/open-loop",
		Description: "open-loop baseline: goodput vs offered load at 30-120% of nominal service capacity",
		Expand: func(s harness.Scale) []harness.Config {
			return svcGrid(s, []string{"alock", "mcs", "spinlock"},
				[]float64{0.3, 0.6, 0.9, 1.2}, func(c *harness.Config) {})
		},
	})
	Register(Scenario{
		Name:        "svc/hot-shard",
		Description: "Zipf(1.5) hot keys at 80% load: hash vs home placement, hot-key rebalance off vs on",
		Expand: func(s harness.Scale) []harness.Config {
			var cfgs []harness.Config
			for _, place := range []string{"hash", "home"} {
				for _, reb := range []bool{false, true} {
					place, reb := place, reb
					cfgs = append(cfgs, svcGrid(s, []string{"alock"}, []float64{0.8},
						func(c *harness.Config) {
							c.ZipfS = 1.5
							c.SvcPlacement = place
							c.SvcRebalance = reb
						})...)
				}
			}
			return cfgs
		},
	})
	Register(Scenario{
		Name:        "svc/burst-storm",
		Description: "on/off arrival storm: 150%-of-capacity bursts against a 32-deep admission queue",
		Expand: func(s harness.Scale) []harness.Config {
			return svcGrid(s, []string{"alock", "mcs"}, []float64{1.5},
				func(c *harness.Config) {
					c.BurstOn = 150 * time.Microsecond
					c.BurstOff = 100 * time.Microsecond
					c.SvcQueueCap = 32
				})
		},
	})
	Register(Scenario{
		Name:        "svc/shed-overload",
		Description: "2x overload: queue capacity 16 vs 256, drop-tail vs drop-head shedding",
		Expand: func(s harness.Scale) []harness.Config {
			var cfgs []harness.Config
			for _, cap := range []int{16, 256} {
				for _, policy := range []string{"drop-tail", "drop-head"} {
					cap, policy := cap, policy
					cfgs = append(cfgs, svcGrid(s, []string{"alock"}, []float64{2.0},
						func(c *harness.Config) {
							c.SvcQueueCap = cap
							c.SvcAdmission = policy
						})...)
				}
			}
			return cfgs
		},
	})
}
