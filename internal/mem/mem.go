// Package mem implements the RDMA-accessible memory substrate.
//
// In the paper's system model (Section 4), all data and metadata live in an
// RDMA-accessible shared memory partitioned among the nodes. This package
// models that partition: each node owns a Region of 8-byte words, and a
// Space aggregates the per-node regions of a cluster into a single address
// space navigated by ptr.Ptr values.
//
// The unit of access is the 8-byte word — the granularity at which RDMA
// atomics and (single cache line) local/remote atomicity are defined
// (Table 1 of the paper). Engines perform loads, stores and CAS directly on
// word addresses obtained from WordAddr; the allocator in this package only
// hands out placement, it never touches word contents after zeroing.
//
// Allocation is 64-byte aligned by default, matching the paper's padding of
// every piece of lock metadata to a cache line to prevent false sharing
// (Figure 3).
package mem

import (
	"fmt"
	"sync"

	"alock/internal/ptr"
)

// WordsPerCacheLine is the number of 8-byte words in a 64-byte cache line,
// the alignment unit for all lock metadata in the paper.
const WordsPerCacheLine = 8

// Region is one node's RDMA-accessible memory: a fixed array of 8-byte
// words plus a thread-safe allocator over it.
//
// Word 0 of every region is reserved at construction so that no object is
// ever placed at offset 0; this keeps ptr.Null (node 0, offset 0)
// unambiguous everywhere.
type Region struct {
	node  int
	words []uint64

	mu   sync.Mutex
	next uint64           // bump pointer (in words)
	free map[int][]uint64 // size class (words) -> freed offsets
	used map[uint64]int   // live offset -> size in words
}

// NewRegion creates a region of `words` 8-byte words owned by `node`.
// The minimum size is one cache line; word 0 is reserved.
func NewRegion(node, words int) *Region {
	if words < WordsPerCacheLine {
		words = WordsPerCacheLine
	}
	return &Region{
		node:  node,
		words: make([]uint64, words),
		next:  WordsPerCacheLine, // burn line 0: keeps offset 0 unallocated
		free:  make(map[int][]uint64),
		used:  make(map[uint64]int),
	}
}

// Node returns the ID of the node owning this region.
func (r *Region) Node() int { return r.node }

// Size returns the region capacity in words.
func (r *Region) Size() int { return len(r.words) }

// WordAddr returns the address of the word at `offset`, for direct atomic
// access by an engine. It panics if offset is out of range — an out-of-range
// RDMA access is a programming error in this system, not a runtime
// condition to be handled.
func (r *Region) WordAddr(offset uint64) *uint64 {
	if offset >= uint64(len(r.words)) {
		panic(fmt.Sprintf("mem: node %d offset %#x out of range (region %d words)",
			r.node, offset, len(r.words)))
	}
	return &r.words[offset]
}

// roundUp rounds n up to a multiple of align (align must be a power of two).
func roundUp(n, align uint64) uint64 {
	return (n + align - 1) &^ (align - 1)
}

// Alloc allocates `words` words aligned to `alignWords` and returns a Ptr
// to the first word. Freed blocks of the same rounded size are reused.
// The block is zeroed. Alloc panics if the region is exhausted: the
// simulated cluster is provisioned up front and exhaustion means the
// experiment configuration is wrong.
func (r *Region) Alloc(words, alignWords int) ptr.Ptr {
	if words <= 0 {
		panic("mem: Alloc of non-positive size")
	}
	if alignWords <= 0 {
		alignWords = 1
	}
	if alignWords&(alignWords-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", alignWords))
	}
	// Round the block size up to the alignment so that freelist reuse
	// preserves alignment for all future users of the block.
	size := int(roundUp(uint64(words), uint64(alignWords)))

	r.mu.Lock()
	defer r.mu.Unlock()

	if list := r.free[size]; len(list) > 0 {
		off := list[len(list)-1]
		r.free[size] = list[:len(list)-1]
		r.used[off] = size
		r.zeroLocked(off, size)
		return ptr.Pack(r.node, off)
	}

	off := roundUp(r.next, uint64(alignWords))
	if off+uint64(size) > uint64(len(r.words)) {
		panic(fmt.Sprintf("mem: node %d region exhausted (want %d words at %#x, cap %d)",
			r.node, size, off, len(r.words)))
	}
	r.next = off + uint64(size)
	r.used[off] = size
	r.zeroLocked(off, size)
	return ptr.Pack(r.node, off)
}

// AllocLine allocates one zeroed, 64-byte-aligned cache line — the shape of
// every descriptor and lock in the paper (Figure 3).
func (r *Region) AllocLine() ptr.Ptr {
	return r.Alloc(WordsPerCacheLine, WordsPerCacheLine)
}

// Free returns a previously allocated block to the region's freelist.
// Freeing an unknown pointer panics (double free / wild free).
func (r *Region) Free(p ptr.Ptr) {
	if p.NodeID() != r.node {
		panic(fmt.Sprintf("mem: Free of %v on region for node %d", p, r.node))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size, ok := r.used[p.Offset()]
	if !ok {
		panic(fmt.Sprintf("mem: Free of unallocated pointer %v", p))
	}
	delete(r.used, p.Offset())
	r.free[size] = append(r.free[size], p.Offset())
}

// LiveBlocks returns the number of currently allocated blocks, for tests
// and leak accounting.
func (r *Region) LiveBlocks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.used)
}

// zeroLocked zeroes size words at off. Caller holds r.mu.
func (r *Region) zeroLocked(off uint64, size int) {
	for i := uint64(0); i < uint64(size); i++ {
		r.words[off+i] = 0
	}
}

// Space is the cluster-wide RDMA-accessible address space: one Region per
// node, indexed by node ID.
type Space struct {
	regions []*Region
	// audit, when set, observes every access through the Space before it
	// happens, keyed by the node whose region is touched. The simulation
	// engine's debug access-audit mode uses it to panic on out-of-protocol
	// cross-shard touches (a word owned by node A mutated from node B's
	// timeline without going through the verb protocol).
	audit func(node int)
}

// NewSpace creates a Space with `nodes` regions of `wordsPerNode` words each.
func NewSpace(nodes, wordsPerNode int) *Space {
	if nodes <= 0 || nodes > ptr.MaxNodes {
		panic(fmt.Sprintf("mem: node count %d out of range (1..%d)", nodes, ptr.MaxNodes))
	}
	s := &Space{regions: make([]*Region, nodes)}
	for i := range s.regions {
		s.regions[i] = NewRegion(i, wordsPerNode)
	}
	return s
}

// SetAudit installs fn as the access auditor: it is called with the target
// node before every WordAddr resolution and allocator operation routed
// through the Space. Install before any concurrent use (the field is read
// unsynchronized on the access hot path); pass nil to disable. Direct
// Region method calls bypass the auditor — engines resolve through Space.
func (s *Space) SetAudit(fn func(node int)) { s.audit = fn }

// Nodes returns the number of nodes in the space.
func (s *Space) Nodes() int { return len(s.regions) }

// Region returns node `id`'s region.
func (s *Space) Region(id int) *Region {
	if id < 0 || id >= len(s.regions) {
		panic(fmt.Sprintf("mem: node %d out of range (space has %d nodes)", id, len(s.regions)))
	}
	return s.regions[id]
}

// WordAddr resolves a Ptr to the address of its backing word.
func (s *Space) WordAddr(p ptr.Ptr) *uint64 {
	if s.audit != nil {
		s.audit(p.NodeID())
	}
	return s.Region(p.NodeID()).WordAddr(p.Offset())
}

// Alloc allocates on the given node. See Region.Alloc.
func (s *Space) Alloc(node, words, alignWords int) ptr.Ptr {
	if s.audit != nil {
		s.audit(node)
	}
	return s.Region(node).Alloc(words, alignWords)
}

// AllocLine allocates one cache line on the given node. See Region.AllocLine.
func (s *Space) AllocLine(node int) ptr.Ptr {
	if s.audit != nil {
		s.audit(node)
	}
	return s.Region(node).AllocLine()
}

// Free releases p back to its node's region.
func (s *Space) Free(p ptr.Ptr) {
	if s.audit != nil {
		s.audit(p.NodeID())
	}
	s.Region(p.NodeID()).Free(p)
}
