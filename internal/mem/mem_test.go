package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"alock/internal/ptr"
)

func TestAllocAlignment(t *testing.T) {
	r := NewRegion(1, 4096)
	for i := 0; i < 32; i++ {
		p := r.AllocLine()
		if p.Offset()%WordsPerCacheLine != 0 {
			t.Fatalf("AllocLine returned unaligned offset %#x", p.Offset())
		}
		if p.NodeID() != 1 {
			t.Fatalf("AllocLine node = %d, want 1", p.NodeID())
		}
	}
}

func TestAllocNeverReturnsNull(t *testing.T) {
	// Node 0 offset 0 is the Null pointer; the region must never hand it out.
	r := NewRegion(0, 4096)
	for i := 0; i < 64; i++ {
		if p := r.Alloc(1, 1); p.IsNull() {
			t.Fatal("Alloc returned the Null pointer")
		}
	}
}

func TestAllocDistinctNonOverlapping(t *testing.T) {
	r := NewRegion(2, 1<<14)
	type blk struct{ off, size uint64 }
	var blks []blk
	sizes := []int{1, 3, 8, 8, 16, 5}
	for _, sz := range sizes {
		p := r.Alloc(sz, 8)
		blks = append(blks, blk{p.Offset(), uint64(sz)})
	}
	for i := range blks {
		for j := i + 1; j < len(blks); j++ {
			a, b := blks[i], blks[j]
			if a.off < b.off+b.size && b.off < a.off+a.size {
				t.Fatalf("blocks overlap: %+v and %+v", a, b)
			}
		}
	}
}

func TestFreeReuse(t *testing.T) {
	r := NewRegion(0, 4096)
	p := r.AllocLine()
	addr := r.WordAddr(p.Offset())
	*addr = 0xdead
	r.Free(p)
	q := r.AllocLine()
	if q.Offset() != p.Offset() {
		t.Fatalf("freed line not reused: got %#x want %#x", q.Offset(), p.Offset())
	}
	if *r.WordAddr(q.Offset()) != 0 {
		t.Fatal("reused block not zeroed")
	}
}

func TestFreeUnknownPanics(t *testing.T) {
	r := NewRegion(0, 4096)
	defer func() {
		if recover() == nil {
			t.Error("Free of unallocated pointer did not panic")
		}
	}()
	r.Free(ptr.Pack(0, 64))
}

func TestDoubleFreePanics(t *testing.T) {
	r := NewRegion(0, 4096)
	p := r.AllocLine()
	r.Free(p)
	defer func() {
		if recover() == nil {
			t.Error("double Free did not panic")
		}
	}()
	r.Free(p)
}

func TestFreeWrongNodePanics(t *testing.T) {
	r := NewRegion(1, 4096)
	defer func() {
		if recover() == nil {
			t.Error("Free of foreign-node pointer did not panic")
		}
	}()
	r.Free(ptr.Pack(2, 64))
}

func TestExhaustionPanics(t *testing.T) {
	r := NewRegion(0, 16) // one line reserved + one allocatable
	r.AllocLine()
	defer func() {
		if recover() == nil {
			t.Error("allocation past region end did not panic")
		}
	}()
	r.AllocLine()
}

func TestWordAddrOutOfRangePanics(t *testing.T) {
	r := NewRegion(0, 64)
	defer func() {
		if recover() == nil {
			t.Error("WordAddr out of range did not panic")
		}
	}()
	r.WordAddr(64)
}

func TestLiveBlocks(t *testing.T) {
	r := NewRegion(0, 4096)
	if r.LiveBlocks() != 0 {
		t.Fatalf("fresh region LiveBlocks = %d", r.LiveBlocks())
	}
	p := r.AllocLine()
	q := r.AllocLine()
	if r.LiveBlocks() != 2 {
		t.Fatalf("LiveBlocks = %d, want 2", r.LiveBlocks())
	}
	r.Free(p)
	r.Free(q)
	if r.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks after frees = %d, want 0", r.LiveBlocks())
	}
}

func TestSpaceResolution(t *testing.T) {
	s := NewSpace(4, 1024)
	if s.Nodes() != 4 {
		t.Fatalf("Nodes() = %d", s.Nodes())
	}
	p := s.AllocLine(3)
	if p.NodeID() != 3 {
		t.Fatalf("AllocLine(3) on node %d", p.NodeID())
	}
	*s.WordAddr(p) = 42
	if *s.Region(3).WordAddr(p.Offset()) != 42 {
		t.Fatal("WordAddr did not resolve to node 3's region")
	}
	s.Free(p)
}

func TestSpaceBadNodeCountPanics(t *testing.T) {
	for _, n := range []int{0, -1, ptr.MaxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", n)
				}
			}()
			NewSpace(n, 64)
		}()
	}
}

func TestConcurrentAlloc(t *testing.T) {
	r := NewRegion(0, 1<<16)
	var wg sync.WaitGroup
	const workers, per = 8, 64
	offsets := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				offsets[w] = append(offsets[w], r.AllocLine().Offset())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, list := range offsets {
		for _, off := range list {
			if seen[off] {
				t.Fatalf("offset %#x allocated twice", off)
			}
			seen[off] = true
		}
	}
}

// Property: any sequence of aligned allocations yields aligned,
// pairwise-disjoint blocks.
func TestQuickAllocDisjoint(t *testing.T) {
	f := func(rawSizes []uint8) bool {
		r := NewRegion(0, 1<<18)
		type blk struct{ off, size uint64 }
		var blks []blk
		for _, raw := range rawSizes {
			sz := int(raw%32) + 1
			p := r.Alloc(sz, 8)
			if p.Offset()%8 != 0 {
				return false
			}
			// Size is rounded up to alignment inside Alloc.
			rounded := uint64((sz + 7) &^ 7)
			blks = append(blks, blk{p.Offset(), rounded})
		}
		for i := range blks {
			for j := i + 1; j < len(blks); j++ {
				a, b := blks[i], blks[j]
				if a.off < b.off+b.size && b.off < a.off+a.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: alloc/free/alloc of the same size class reuses memory and the
// reused block is always zeroed.
func TestQuickReuseZeroed(t *testing.T) {
	f := func(vals []uint64) bool {
		r := NewRegion(0, 1<<16)
		var ps []ptr.Ptr
		for range vals {
			ps = append(ps, r.AllocLine())
		}
		for i, p := range ps {
			*r.WordAddr(p.Offset()) = vals[i] | 1 // ensure nonzero
			r.Free(p)
		}
		for range ps {
			p := r.AllocLine()
			for w := uint64(0); w < WordsPerCacheLine; w++ {
				if *r.WordAddr(p.Offset() + w) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAuditObservesSpaceAccesses: the auditor sees the target node of every
// Space-routed access — word resolution, allocation, free — and can veto by
// panicking. Direct Region calls bypass it (engines resolve through Space).
func TestAuditObservesSpaceAccesses(t *testing.T) {
	s := NewSpace(3, 64)
	var seen []int
	s.SetAudit(func(node int) { seen = append(seen, node) })

	p := s.AllocLine(2)
	_ = s.WordAddr(p)
	q := s.Alloc(1, 1, 1)
	s.Free(q)
	s.Free(p)

	want := []int{2, 2, 1, 1, 2}
	if len(seen) != len(want) {
		t.Fatalf("auditor saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("auditor saw %v, want %v", seen, want)
		}
	}

	// Region-level access bypasses the auditor.
	seen = seen[:0]
	_ = s.Region(0).WordAddr(8)
	if len(seen) != 0 {
		t.Fatalf("Region access reached the auditor: %v", seen)
	}

	// Disabled auditor observes nothing.
	s.SetAudit(nil)
	_ = s.WordAddr(p)
}

// TestAuditPanicPropagates: a vetoing auditor turns an access into a panic
// at the access site — the mechanism the engine's access-audit mode uses to
// catch out-of-protocol cross-shard touches.
func TestAuditPanicPropagates(t *testing.T) {
	s := NewSpace(2, 64)
	s.SetAudit(func(node int) {
		if node == 1 {
			panic("forbidden node")
		}
	})
	_ = s.AllocLine(0) // allowed
	defer func() {
		if recover() == nil {
			t.Fatal("audited access to node 1 did not panic")
		}
	}()
	_ = s.AllocLine(1)
}
