// bench_test.go contains one testing.B benchmark per table and figure of
// the paper's evaluation, plus micro-benchmarks of the individual lock
// paths. The figure benchmarks run reduced-scale versions of the exact
// sweeps `cmd/figures` performs and report the headline quantity of the
// corresponding figure as a custom metric, so `go test -bench=.` doubles
// as a regression check on every reproduced result.
package alock_test

import (
	"runtime"
	"testing"

	"alock"
	"alock/internal/check"
	"alock/internal/harness"
)

// engineMeter accumulates simulator events and heap allocations across a
// benchmark's timed region and reports them in the same units cmd/bench
// writes to BENCH_*.json — events/sec of wall clock and allocs/event — so
// `go test -bench` output and the checked-in trajectory files are directly
// comparable.
type engineMeter struct {
	events uint64
	m0     runtime.MemStats
}

func startMeter() *engineMeter {
	m := &engineMeter{}
	runtime.ReadMemStats(&m.m0)
	return m
}

func (m *engineMeter) add(r harness.Result) { m.events += r.Events }

func (m *engineMeter) report(b *testing.B) {
	if m.events == 0 {
		return
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	b.ReportMetric(float64(m.events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(m1.Mallocs-m.m0.Mallocs)/float64(m.events), "allocs/event")
}

// benchRun executes one simulated experiment per iteration, reports the
// engine metrics, and returns the last result for metric reporting.
func benchRun(b *testing.B, cfg harness.Config) harness.Result {
	b.Helper()
	meter := startMeter()
	var res harness.Result
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err = harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meter.add(res)
	}
	meter.report(b)
	return res
}

func quickExperiment(algo string) harness.Config {
	return harness.Config{
		Algorithm:      algo,
		Nodes:          4,
		ThreadsPerNode: 4,
		Locks:          40,
		LocalityPct:    90,
		WarmupNS:       100_000,
		MeasureNS:      1_000_000,
		TargetOps:      10_000,
	}
}

// --- Table 1 ---

// BenchmarkTable1Atomicity runs the full atomicity probe matrix (the
// Table 1 regeneration) once per iteration.
func BenchmarkTable1Atomicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := harness.Table1()
		if len(cells) != 9 {
			b.Fatalf("matrix has %d cells", len(cells))
		}
	}
}

// --- Figure 1 ---

// BenchmarkFigure1Loopback regenerates the loopback-congestion curve and
// reports the peak-to-16-thread throughput collapse factor.
func BenchmarkFigure1Loopback(b *testing.B) {
	var pts []harness.Fig1Point
	for i := 0; i < b.N; i++ {
		pts = harness.Figure1(harness.Scale{Quick: true, Seed: int64(i + 1)}, harness.RunSerial)
	}
	peak := 0.0
	for _, p := range pts {
		if p.Throughput > peak {
			peak = p.Throughput
		}
	}
	last := pts[len(pts)-1].Throughput
	b.ReportMetric(peak/last, "peak/16thr")
	b.ReportMetric(peak, "peak_ops/s")
}

// --- Figure 4 ---

// BenchmarkFigure4Budget regenerates the budget study and reports the
// speedup of remote budget 20 over the baseline 5 (paper: up to 1.23x).
func BenchmarkFigure4Budget(b *testing.B) {
	var rows []harness.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = harness.Figure4(harness.Scale{Quick: true, Seed: int64(i + 1)}, harness.RunSerial)
	}
	b.ReportMetric(rows[len(rows)-1].AvgSpeedup, "speedup_rb20")
}

// --- Figure 5 ---

// BenchmarkFigure5HighContention reproduces the high-contention panels'
// comparison (20 locks) at one representative point and reports the
// ALock/MCS and ALock/spinlock ratios (paper: up to 29x and 24x).
func BenchmarkFigure5HighContention(b *testing.B) {
	var ratios [2]float64
	meter := startMeter()
	for i := 0; i < b.N; i++ {
		base := harness.Config{
			Nodes:          harness.MaxClusterNodes,
			ThreadsPerNode: 8,
			Locks:          20,
			LocalityPct:    95,
			WarmupNS:       150_000,
			MeasureNS:      1_500_000,
			TargetOps:      25_000,
			Seed:           int64(i + 1),
		}
		tput := map[string]float64{}
		for _, algo := range harness.EvalAlgorithms {
			cfg := base
			cfg.Algorithm = algo
			r, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tput[algo] = r.Throughput
			meter.add(r)
		}
		ratios[0] = tput["alock"] / tput["mcs"]
		ratios[1] = tput["alock"] / tput["spinlock"]
	}
	meter.report(b)
	b.ReportMetric(ratios[0], "alock/mcs")
	b.ReportMetric(ratios[1], "alock/spin")
}

// BenchmarkFigure5FullLocality reproduces the isolated 100%-locality
// panels (paper: ALock up to 24x/22x over MCS/spinlock).
func BenchmarkFigure5FullLocality(b *testing.B) {
	var ratios [2]float64
	meter := startMeter()
	for i := 0; i < b.N; i++ {
		base := harness.Config{
			Nodes:          5,
			ThreadsPerNode: 8,
			Locks:          20,
			LocalityPct:    100,
			WarmupNS:       150_000,
			MeasureNS:      1_500_000,
			TargetOps:      25_000,
			Seed:           int64(i + 1),
		}
		tput := map[string]float64{}
		for _, algo := range harness.EvalAlgorithms {
			cfg := base
			cfg.Algorithm = algo
			r, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tput[algo] = r.Throughput
			meter.add(r)
		}
		ratios[0] = tput["alock"] / tput["mcs"]
		ratios[1] = tput["alock"] / tput["spinlock"]
	}
	meter.report(b)
	b.ReportMetric(ratios[0], "alock/mcs")
	b.ReportMetric(ratios[1], "alock/spin")
}

// BenchmarkFigure5LowContention reproduces the low-contention panels
// (1000 locks; paper: ALock up to 3.8x/3.3x).
func BenchmarkFigure5LowContention(b *testing.B) {
	var ratios [2]float64
	meter := startMeter()
	for i := 0; i < b.N; i++ {
		base := harness.Config{
			Nodes:          5,
			ThreadsPerNode: 8,
			Locks:          1000,
			LocalityPct:    95,
			WarmupNS:       150_000,
			MeasureNS:      1_500_000,
			TargetOps:      25_000,
			Seed:           int64(i + 1),
		}
		tput := map[string]float64{}
		for _, algo := range harness.EvalAlgorithms {
			cfg := base
			cfg.Algorithm = algo
			r, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tput[algo] = r.Throughput
			meter.add(r)
		}
		ratios[0] = tput["alock"] / tput["mcs"]
		ratios[1] = tput["alock"] / tput["spinlock"]
	}
	meter.report(b)
	b.ReportMetric(ratios[0], "alock/mcs")
	b.ReportMetric(ratios[1], "alock/spin")
}

// BenchmarkFigure5LocalitySweep reports ALock's locality sensitivity at
// low contention (paper: +40% from 85→90%, a further +75% at 95%).
func BenchmarkFigure5LocalitySweep(b *testing.B) {
	var pts []harness.Fig5LocalityPoint
	for i := 0; i < b.N; i++ {
		pts = harness.Figure5LocalitySweep(harness.Scale{Quick: true, Seed: int64(i + 1)}, harness.RunSerial)
	}
	if len(pts) >= 3 && pts[0].Throughput > 0 && pts[1].Throughput > 0 {
		b.ReportMetric(pts[1].Throughput/pts[0].Throughput, "90v85")
		b.ReportMetric(pts[2].Throughput/pts[1].Throughput, "95v90")
	}
}

// --- Figure 6 ---

// BenchmarkFigure6Latency regenerates one latency-CDF panel per contention
// level (10 nodes, 8 threads, 95% locality) and reports the ALock/MCS p50
// ratio at high contention (paper: MCS latency up to 17x ALock's).
func BenchmarkFigure6Latency(b *testing.B) {
	var p50 map[string]int64
	meter := startMeter()
	for i := 0; i < b.N; i++ {
		p50 = map[string]int64{}
		for _, algo := range harness.EvalAlgorithms {
			r, err := harness.Run(harness.Config{
				Algorithm:      algo,
				Nodes:          10,
				ThreadsPerNode: 8,
				Locks:          20,
				LocalityPct:    95,
				WarmupNS:       150_000,
				MeasureNS:      1_500_000,
				TargetOps:      25_000,
				Seed:           int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			p50[algo] = r.Latency.P50NS
			meter.add(r)
		}
	}
	meter.report(b)
	if p50["alock"] > 0 {
		b.ReportMetric(float64(p50["mcs"])/float64(p50["alock"]), "mcs/alock_p50")
		b.ReportMetric(float64(p50["spinlock"])/float64(p50["alock"]), "spin/alock_p50")
	}
}

// --- Appendix A ---

// BenchmarkAppendixATLACheck exhaustively model-checks the Appendix A
// specification (3 processes, budget 1) per iteration.
func BenchmarkAppendixATLACheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := check.Run(check.Config{Procs: 3, Budget: 1})
		if err != nil || !res.OK() {
			b.Fatalf("check failed: %v %v", res, err)
		}
	}
}

// --- Ablations (DESIGN.md extensions) ---

// BenchmarkAblationBudget compares ALock against its no-budget ablation.
func BenchmarkAblationBudget(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		with, err := harness.Run(quickExperiment("alock"))
		if err != nil {
			b.Fatal(err)
		}
		without, err := harness.Run(quickExperiment("alock-nobudget"))
		if err != nil {
			b.Fatal(err)
		}
		ratio = with.Throughput / without.Throughput
	}
	b.ReportMetric(ratio, "budget/nobudget")
}

// BenchmarkAblationCohortSplit compares ALock against the symmetric
// (single-cohort) ablation, isolating the value of the asymmetric split.
func BenchmarkAblationCohortSplit(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		asym, err := harness.Run(quickExperiment("alock"))
		if err != nil {
			b.Fatal(err)
		}
		sym, err := harness.Run(quickExperiment("alock-symmetric"))
		if err != nil {
			b.Fatal(err)
		}
		ratio = asym.Throughput / sym.Throughput
	}
	b.ReportMetric(ratio, "asym/sym")
}

// --- Micro-benchmarks on the real-time engine ---

// BenchmarkALockUncontendedLocal measures a real (wall-clock) uncontended
// local lock/unlock pair on the real-time engine.
func BenchmarkALockUncontendedLocal(b *testing.B) {
	c := alock.NewCluster(alock.ClusterConfig{Nodes: 1})
	l := c.AllocLock(0)
	done := make(chan struct{})
	c.Spawn(0, func(ctx alock.Ctx) {
		h := alock.NewHandle(ctx, alock.DefaultConfig())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Lock(l)
			h.Unlock(l)
		}
		close(done)
	})
	<-done
	c.Wait()
}

// BenchmarkALockContendedLocal measures wall-clock throughput of 4 real
// goroutines contending on one ALock.
func BenchmarkALockContendedLocal(b *testing.B) {
	c := alock.NewCluster(alock.ClusterConfig{Nodes: 1})
	l := c.AllocLock(0)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ready := make(chan struct{})
		c.Spawn(0, func(ctx alock.Ctx) {
			h := alock.NewHandle(ctx, alock.DefaultConfig())
			for pb.Next() {
				h.Lock(l)
				h.Unlock(l)
			}
			close(ready)
		})
		<-ready
	})
	c.Wait()
}

// BenchmarkSimulatorEventRate measures raw simulator throughput in events
// per second (the cost of reproducing one virtual operation).
func BenchmarkSimulatorEventRate(b *testing.B) {
	cfg := quickExperiment("alock")
	cfg.TargetOps = 5_000
	var events uint64
	var ops int64
	meter := startMeter()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += r.Events
		ops += r.Ops
		meter.add(r)
	}
	meter.report(b)
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(events)/float64(ops), "events/op")
}
